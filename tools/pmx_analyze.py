#!/usr/bin/env python3
"""pmx-analyze: whole-program layering + determinism analyzer.

pmx-lint (tools/pmx_lint.py) checks line-local hygiene; this tool is the
whole-program companion and the single CLI entry point for both: one run
covers the lint rules plus four cross-file passes, one ``// pmx-lint:
allow(<rule>)`` escape hatch, and one fingerprint-baseline format
(tools/pmx_lexer.py). The passes:

1. Include-graph / layer contract (``layer-violation``, ``include-cycle``).
   src/ modules form a declared DAG:

       common -> sim -> {sched, fabric, predictor, fault}
              -> {nic, traffic, compiled} -> switching -> core

   A module may include itself and modules of strictly lower layers;
   same-layer edges are violations unless declared in INTRA_LAYER_EDGES
   (currently ``compiled -> traffic``: compiled plans are built from traffic
   programs; acyclicity of the declared edges is checked at startup). Any
   include that climbs the DAG -- e.g. a predictor reaching into the NIC, or
   the switching base including core -- is a ``layer-violation``. File-level
   include cycles (direct or transitive) are ``include-cycle`` findings.
   ``--dot FILE`` emits the module-level include graph as Graphviz DOT
   (layers as clusters, edge labels = include counts, violations in red);
   the committed snapshot lives in tests/golden/include_graph.dot.

2. Determinism taint (``ptr-order``). Pointer-keyed or pointer-ordered
   containers (``unordered_map<T*, ...>``, ``set<T*>``), ``std::hash`` over
   pointer types, and comparators that sort raw pointers by address all leak
   allocation order (ASLR makes it nondeterministic across runs) into
   iteration or event order. Key by stable ids (NodeId, MessageId, (src,dst))
   instead -- this is the cross-file generalization of the unordered-map
   bucket-order bug pmx-lint caught in predictor eviction.

3. Wall-clock / environment taint (``wallclock``). ``system_clock``,
   ``time()``, ``clock()``, ``clock_gettime``, ``gettimeofday``,
   ``localtime``/``gmtime``, and ``getenv`` make behavior depend on when or
   where the process runs. All simulated time flows from sim/clock.hpp; all
   configuration flows from Config/CLI. ``steady_clock`` and
   ``high_resolution_clock`` are additionally banned inside src/ (benches
   may measure their own wall time).

4. Hot-path allocation (``hot-path-alloc``). A function marked with a
   ``// pmx-hot`` comment on the line above its signature must not allocate:
   no ``new`` / ``make_unique`` / ``make_shared``, no ``std::function``
   construction, no string building (``std::string`` construction,
   ``to_string``, stringstreams, concatenation), and no container growth
   (``push_back`` & friends, ``insert``, ``resize``) on containers that are
   never ``reserve``d in the same file or its paired header. Annotated
   kernels: ``sl_array_pass_fast`` (the word-parallel scheduler pass),
   the EventQueue heap ops, and the VOQ drain path.

Baselines: entries in the pmx-analyze baseline must carry a nonempty
``"justification"``; the contract may only be suspended with a written
reason. ``--write-baseline`` emits empty justification fields to fill in.

Exit status: 0 when no (new) findings, 1 when findings remain, 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

import pmx_lint
from pmx_lexer import (
    DEFAULT_ROOTS,
    EXCLUDED_PARTS,
    Finding,
    LexedFile,
    SOURCE_EXTENSIONS,
    discover,
    load_baseline,
    subtract_baseline,
    write_baseline,
)

# --------------------------------------------------------------------------
# The architecture contract. LAYERS is the declared DAG, bottom-up: a module
# may depend on (include from) itself, any module in a strictly lower layer,
# and the explicitly declared same-layer edges below. Grow the contract here
# (and in DESIGN.md section 13) BEFORE adding a new src/ module; an
# undeclared module is itself a violation.
# --------------------------------------------------------------------------
LAYERS: tuple[tuple[str, ...], ...] = (
    ("common",),
    ("sim",),
    ("sched", "fabric", "predictor", "fault"),
    ("control",),
    ("nic", "traffic", "compiled"),
    ("switching",),
    ("core",),
)

#: Declared same-layer dependencies (includer, includee). Kept rare and
#: documented: compiled slot plans are compiled *from* traffic programs, so
#: compiled may see traffic's program model (never the reverse).
INTRA_LAYER_EDGES: frozenset[tuple[str, str]] = frozenset({
    ("compiled", "traffic"),
})

LAYER_RANK: dict[str, int] = {
    mod: rank for rank, layer in enumerate(LAYERS) for mod in layer
}

RULES = {
    "layer-violation": "include edge breaks the declared layer DAG "
    "(see LAYERS in tools/pmx_analyze.py and DESIGN.md section 13)",
    "include-cycle": "file-level include cycle; break it with a forward "
    "declaration or by moving shared types down a layer",
    "ptr-order": "pointer-keyed/ordered container, pointer hash, or "
    "sort-by-address leaks allocation order (nondeterministic under ASLR); "
    "key by stable ids instead",
    "wallclock": "wall-clock/environment API; simulated time comes from "
    "sim/clock.hpp and configuration from Config/CLI",
    "hot-path-alloc": "allocating construct inside a // pmx-hot kernel; "
    "hoist the allocation out of the hot path or reserve up front",
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
#: What a local include looks like after the lexer blanks the string body.
INCLUDE_STUB_RE = re.compile(r'^\s*#\s*include\s+""')

PTR_UNORDERED_KEY_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^,>;]*\*")
PTR_ORDERED_KEY_RE = re.compile(
    r"(?<![\w:])(?:std::)?(?:map|set|multimap|multiset)\s*<[^,>;]*\*")
PTR_HASH_RE = re.compile(r"\bstd::hash\s*<[^>]*\*\s*>")
SORT_CALL_RE = re.compile(r"\b(?:std::)?(?:stable_)?sort\s*\(")
LAMBDA_RE = re.compile(
    r"\[[^\]]*\]\s*\(([^)]*)\)\s*(?:->\s*[\w:<>]+\s*)?\{([^}]*)\}")
LAMBDA_PTR_PARAM_RE = re.compile(r"\*\s*(?:const\s+)?([A-Za-z_]\w*)\s*(?:[,)]|$)")

WALLCLOCK_RE = re.compile(
    r"\bsystem_clock\b"
    r"|\bgettimeofday\s*\("
    r"|\bclock_gettime\s*\("
    r"|\blocaltime(?:_r)?\s*\("
    r"|\bgmtime(?:_r)?\s*\("
    r"|(?<![\w:.>])time\s*\("
    r"|(?<![\w:.>])clock\s*\(\s*(?:void\s*)?\)"
    r"|\bgetenv\s*\("
)
#: Monotonic clocks: fine for a bench timing its own wall clock, still
#: forbidden inside the simulation library (behavior must never depend on
#: host timing).
MONOTONIC_RE = re.compile(r"\bsteady_clock\b|\bhigh_resolution_clock\b")

#: The annotation is a comment consisting of exactly `pmx-hot` -- prose
#: comments that merely mention the marker (docs, this file) do not count.
HOT_MARK_RE = re.compile(r"^\s*pmx-hot\s*$")
HOT_ALLOC_RE = re.compile(
    r"\bmake_unique\s*<|\bmake_shared\s*<|\bstd::function\s*<")
HOT_STRING_RE = re.compile(
    r"\bto_string\s*\(|\b[ois]?stringstream\b|\bstd::string\b"
    r'|""\s*\+|\+\s*""|\.append\s*\(')
HOT_GROW_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*(?:\[[^\]]*\]\s*)?\.\s*"
    r"(?:push_back|push_front|emplace_back|emplace_front|emplace"
    r"|insert|resize)\s*\(")
RESERVE_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*(?:reserve|rehash)\s*\(")


def validate_contract() -> None:
    """The declared same-layer edges must not form a cycle (the inter-layer
    part is acyclic by construction: edges only point down ranks)."""
    adj: dict[str, set[str]] = {}
    for a, b in INTRA_LAYER_EDGES:
        if LAYER_RANK.get(a) != LAYER_RANK.get(b):
            raise ValueError(
                f"INTRA_LAYER_EDGES entry {a}->{b} does not connect "
                "same-layer modules")
        adj.setdefault(a, set()).add(b)
    # White/grey/black DFS: a grey->grey edge is a cycle.
    color: dict[str, int] = {}
    for start in adj:
        if color.get(start):
            continue
        stack: list[tuple[str, bool]] = [(start, False)]
        while stack:
            node, leaving = stack.pop()
            if leaving:
                color[node] = 2
                continue
            if color.get(node) == 2:
                continue
            color[node] = 1
            stack.append((node, True))
            for nxt in adj.get(node, ()):
                if color.get(nxt) == 1:
                    raise ValueError(
                        "INTRA_LAYER_EDGES contains a cycle through " + nxt)
                if not color.get(nxt):
                    stack.append((nxt, False))


# --------------------------------------------------------------------------
# Pass 1: include graph, layer contract, cycles, DOT artifact.
# --------------------------------------------------------------------------

class IncludeGraph:
    """Whole-program include graph over one src tree. Nodes are src-relative
    file paths ("sched/sl_array.hpp"); modules are their first components."""

    def __init__(self, src_root: Path):
        self.src_root = src_root
        self.files: dict[str, LexedFile] = {}
        #: file -> [(lineno, include_target)] for targets inside the tree
        self.file_edges: dict[str, list[tuple[int, str]]] = {}
        #: (src_module, dst_module) -> include count (self-edges excluded)
        self.module_edges: dict[tuple[str, str], int] = {}
        for ext in SOURCE_EXTENSIONS:
            for path in sorted(src_root.rglob(f"*{ext}")):
                # Exclusion is relative to the tree under analysis, so a
                # fixture tree that itself lives under lint_fixtures/ can
                # still be analyzed by pointing --src-root at it.
                rel_parts = path.relative_to(src_root).parts
                if any(part in EXCLUDED_PARTS for part in rel_parts):
                    continue
                rel = path.relative_to(src_root).as_posix()
                self.files[rel] = LexedFile(path, rel)
        for rel, lexed in self.files.items():
            edges: list[tuple[int, str]] = []
            # The include target is a string literal, which the lexer blanks
            # out of code lines: read it from the raw line, but only where
            # the stripped line confirms a real include directive (not one
            # quoted inside a comment or string).
            for lineno, code_line in enumerate(lexed.code, 1):
                if not INCLUDE_STUB_RE.match(code_line):
                    continue
                m = INCLUDE_RE.match(lexed.source_line(lineno))
                if not m:
                    continue
                target = m.group(1)
                if target in self.files:
                    edges.append((lineno, target))
                    src_mod = module_of(rel)
                    dst_mod = module_of(target)
                    if src_mod != dst_mod:
                        key = (src_mod, dst_mod)
                        self.module_edges[key] = self.module_edges.get(key, 0) + 1
            self.file_edges[rel] = edges

    def modules(self) -> list[str]:
        return sorted({module_of(rel) for rel in self.files})


def module_of(rel: str) -> str:
    return rel.split("/", 1)[0]


def edge_allowed(src_mod: str, dst_mod: str) -> bool:
    if src_mod == dst_mod:
        return True
    src_rank = LAYER_RANK.get(src_mod)
    dst_rank = LAYER_RANK.get(dst_mod)
    if src_rank is None or dst_rank is None:
        return False  # undeclared module: always a violation
    if dst_rank < src_rank:
        return True
    if dst_rank == src_rank:
        return (src_mod, dst_mod) in INTRA_LAYER_EDGES
    return False


def layer_pass(graph: IncludeGraph, findings: list[Finding],
               rel_prefix: str) -> None:
    for rel in sorted(graph.files):
        lexed = graph.files[rel]
        src_mod = module_of(rel)
        undeclared = src_mod not in LAYER_RANK
        if undeclared:
            lexed_rel = rel_prefix + rel
            findings.append(Finding(
                lexed_rel, 1, "layer-violation",
                f"module '{src_mod}' is not declared in the layer contract; "
                "add it to LAYERS in tools/pmx_analyze.py and DESIGN.md "
                "section 13", lexed.source_line(1)))
        for lineno, target in graph.file_edges[rel]:
            dst_mod = module_of(target)
            if src_mod == dst_mod or edge_allowed(src_mod, dst_mod):
                continue
            if undeclared and dst_mod in LAYER_RANK:
                continue  # already reported the module itself
            lexed.rel = rel_prefix + rel
            lexed.emit(findings, lineno, "layer-violation",
                       f"'{src_mod}' (layer {LAYER_RANK.get(src_mod, '?')}) "
                       f"must not include '{dst_mod}' "
                       f"(layer {LAYER_RANK.get(dst_mod, '?')}): "
                       + RULES["layer-violation"])


def cycle_pass(graph: IncludeGraph, findings: list[Finding],
               rel_prefix: str) -> None:
    """Tarjan SCCs over the file-level include graph; every SCC with more
    than one file (or a self-include) is one include-cycle finding."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    adj = {rel: [t for _, t in edges]
           for rel, edges in graph.file_edges.items()}

    def strongconnect(root: str) -> None:
        work = [(root, iter(adj.get(root, ())))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(adj.get(nxt, ()))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)

    for rel in sorted(graph.files):
        if rel not in index:
            strongconnect(rel)

    for scc in sccs:
        members = set(scc)
        cyclic = len(scc) > 1 or any(
            node in adj.get(node, ()) for node in scc)
        if not cyclic:
            continue
        anchor = min(scc)
        lexed = graph.files[anchor]
        lineno = next((ln for ln, t in graph.file_edges[anchor]
                       if t in members), 1)
        lexed.rel = rel_prefix + anchor
        lexed.emit(findings, lineno, "include-cycle",
                   "include cycle through { "
                   + ", ".join(sorted(members)) + " }: "
                   + RULES["include-cycle"])


def write_dot(graph: IncludeGraph, out_path: Path) -> None:
    """Module-level include graph, deterministic (sorted) for golden
    snapshot testing. Contract-violating edges render red and bold."""
    lines = [
        "// Generated by tools/pmx_analyze.py --dot; module-level include",
        "// graph of src/. Regenerate after any cross-module include change.",
        "digraph pmx_modules {",
        "  rankdir=BT;",
        "  node [shape=box, fontname=\"Helvetica\"];",
    ]
    by_rank: dict[int, list[str]] = {}
    for mod in graph.modules():
        by_rank.setdefault(LAYER_RANK.get(mod, -1), []).append(mod)
    for rank in sorted(by_rank):
        label = f"layer {rank}" if rank >= 0 else "undeclared"
        lines.append(f"  subgraph cluster_{max(rank, 0)}_" +
                     ("u" if rank < 0 else "d") + " {")
        lines.append(f"    label=\"{label}\";")
        lines.append("    rank=same;")
        for mod in sorted(by_rank[rank]):
            lines.append(f"    \"{mod}\";")
        lines.append("  }")
    for (src_mod, dst_mod) in sorted(graph.module_edges):
        count = graph.module_edges[(src_mod, dst_mod)]
        attrs = [f"label=\"{count}\""]
        if not edge_allowed(src_mod, dst_mod):
            attrs.append("color=red")
            attrs.append("penwidth=2.0")
        lines.append(
            f"  \"{src_mod}\" -> \"{dst_mod}\" [{', '.join(attrs)}];")
    lines.append("}")
    out_path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def render_dot(graph: IncludeGraph) -> str:
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "g.dot"
        write_dot(graph, out)
        return out.read_text(encoding="utf-8")


# --------------------------------------------------------------------------
# Pass 2+3: determinism taint (ptr-order, wallclock).
# --------------------------------------------------------------------------

def ptr_order_pass(lexed: LexedFile, findings: list[Finding]) -> None:
    for lineno, line in enumerate(lexed.code, 1):
        if (PTR_UNORDERED_KEY_RE.search(line)
                or PTR_ORDERED_KEY_RE.search(line)
                or PTR_HASH_RE.search(line)):
            lexed.emit(findings, lineno, "ptr-order", RULES["ptr-order"])
            continue
        if SORT_CALL_RE.search(line):
            for m in LAMBDA_RE.finditer(line):
                params, body = m.group(1), m.group(2)
                ptr_params = LAMBDA_PTR_PARAM_RE.findall(params)
                if len(ptr_params) < 2:
                    continue
                a, b = ptr_params[0], ptr_params[1]
                if re.search(rf"\b{a}\s*[<>]\s*{b}\b|\b{b}\s*[<>]\s*{a}\b",
                             body):
                    lexed.emit(findings, lineno, "ptr-order",
                               "comparator orders raw pointers by address: "
                               + RULES["ptr-order"])
                    break


def wallclock_pass(lexed: LexedFile, findings: list[Finding]) -> None:
    in_library = lexed.rel.replace("\\", "/").startswith("src/")
    for lineno, line in enumerate(lexed.code, 1):
        if WALLCLOCK_RE.search(line):
            lexed.emit(findings, lineno, "wallclock", RULES["wallclock"])
        elif in_library and MONOTONIC_RE.search(line):
            lexed.emit(findings, lineno, "wallclock",
                       "monotonic host clock inside the simulation library: "
                       + RULES["wallclock"])


# --------------------------------------------------------------------------
# Pass 4: // pmx-hot annotated kernels must not allocate.
# --------------------------------------------------------------------------

def hot_regions(lexed: LexedFile) -> list[tuple[int, int, int]]:
    """Return (first_line, first_col, last_line) for each region annotated
    with // pmx-hot: from the opening brace of the next function to its
    matching close. first_col is the offset just past the opening brace on
    first_line (the signature itself is not part of the region)."""
    regions: list[tuple[int, int, int]] = []
    n = len(lexed.code)
    for idx, comment in enumerate(lexed.comments):
        if not HOT_MARK_RE.search(comment):
            continue
        # Find the opening brace of the annotated function.
        line_no = idx + 1  # first code line after the annotation line
        depth = 0
        start: tuple[int, int] | None = None
        done = False
        while line_no < n and not done:
            line = lexed.code[line_no]
            for col, ch in enumerate(line):
                if ch == "{":
                    if depth == 0:
                        start = (line_no + 1, col + 1)
                    depth += 1
                elif ch == "}":
                    depth -= 1
                    if depth == 0 and start is not None:
                        regions.append((start[0], start[1], line_no + 1))
                        done = True
                        break
                elif ch == ";" and depth == 0 and start is None:
                    done = True  # declaration only: nothing to scan
                    break
            line_no += 1
    return regions


def hot_path_pass(lexed: LexedFile, extra_scope: list[str],
                  findings: list[Finding]) -> None:
    regions = hot_regions(lexed)
    if not regions:
        return
    reserved = {m.group(1)
                for line in list(lexed.code) + extra_scope
                for m in RESERVE_RE.finditer(line)}
    for first, first_col, last in regions:
        for lineno in range(first, last + 1):
            line = lexed.code[lineno - 1]
            if lineno == first:
                line = line[first_col:]
            if pmx_lint.NEW_RE.search(line) or HOT_ALLOC_RE.search(line):
                lexed.emit(findings, lineno, "hot-path-alloc",
                           RULES["hot-path-alloc"])
                continue
            if HOT_STRING_RE.search(line):
                lexed.emit(findings, lineno, "hot-path-alloc",
                           "string building in a hot kernel: "
                           + RULES["hot-path-alloc"])
                continue
            for m in HOT_GROW_RE.finditer(line):
                if m.group(1) in reserved:
                    continue
                lexed.emit(findings, lineno, "hot-path-alloc",
                           f"un-reserved growth of '{m.group(1)}' in a hot "
                           "kernel: " + RULES["hot-path-alloc"])
                break


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------

ANALYZE_FILE_RULES = ("ptr-order", "wallclock", "hot-path-alloc")
GRAPH_RULES = ("layer-violation", "include-cycle")


def analyze_file(path: Path, rel: str, rules: set[str]) -> list[Finding]:
    """Run the per-file analyze passes (not the include-graph passes) on one
    file. Mirrors pmx_lint.lint_file for fixture-driven testing."""
    lexed = LexedFile(path, rel)
    findings: list[Finding] = []
    if "ptr-order" in rules:
        ptr_order_pass(lexed, findings)
    if "wallclock" in rules:
        wallclock_pass(lexed, findings)
    if "hot-path-alloc" in rules:
        hot_path_pass(lexed, pmx_lint.paired_header_lines(path), findings)
    return findings


def all_rules(include_lint: bool = True) -> dict[str, str]:
    rules = dict(RULES)
    if include_lint:
        rules.update(pmx_lint.RULES)
    return rules


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="pmx-analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*",
                        help="files or directories for the per-file passes "
                             f"(default: {', '.join(DEFAULT_ROOTS)})")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--src-root", default="src",
                        help="tree the include-graph passes analyze, "
                             "relative to --root (default: src)")
    parser.add_argument("--rules",
                        help="comma-separated rule subset to run")
    parser.add_argument("--no-lint", action="store_true",
                        help="skip the pmx-lint line-local rules")
    parser.add_argument("--baseline", metavar="FILE",
                        help="JSON baseline; entries need justifications; "
                             "only new findings fail")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write current findings as the new baseline "
                             "(with empty justification fields to fill in)")
    parser.add_argument("--dot", metavar="FILE",
                        help="write the module-level include graph as DOT")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-finding output")
    args = parser.parse_args(argv)

    validate_contract()
    registry = all_rules(include_lint=not args.no_lint)

    if args.list_rules:
        for rule, doc in registry.items():
            print(f"{rule:15s} {doc}")
        return 0

    active = set(registry)
    if args.rules:
        active = {r.strip() for r in args.rules.split(",")}
        unknown = active - set(all_rules())
        if unknown:
            print("pmx-analyze: unknown rule(s): "
                  + ", ".join(sorted(unknown)), file=sys.stderr)
            return 2

    root = Path(args.root).resolve()
    findings: list[Finding] = []

    # Whole-program include-graph passes over the src tree.
    src_root = (root / args.src_root
                if not Path(args.src_root).is_absolute()
                else Path(args.src_root))
    graph: IncludeGraph | None = None
    if src_root.is_dir():
        graph = IncludeGraph(src_root)
        try:
            prefix = src_root.relative_to(root).as_posix() + "/"
        except ValueError:
            prefix = str(src_root) + "/"
        if "layer-violation" in active:
            layer_pass(graph, findings, prefix)
        if "include-cycle" in active:
            cycle_pass(graph, findings, prefix)
        if args.dot:
            write_dot(graph, Path(args.dot))
    elif any(r in active for r in GRAPH_RULES):
        print(f"pmx-analyze: src root {src_root} not found; "
              "skipping include-graph passes", file=sys.stderr)

    # Per-file passes (analyze taint + optional lint rules).
    files = discover(root, args.paths)
    file_rules = {r for r in active if r in ANALYZE_FILE_RULES}
    lint_rules = ({r for r in active if r in pmx_lint.RULES}
                  if not args.no_lint else set())
    for f in files:
        try:
            rel = str(f.resolve().relative_to(root))
        except ValueError:
            rel = str(f)
        if file_rules:
            findings.extend(analyze_file(f, rel, file_rules))
        if lint_rules:
            findings.extend(pmx_lint.lint_file(f, rel, lint_rules))

    findings.sort(key=lambda fi: (fi.path, fi.line, fi.rule))

    if args.write_baseline:
        write_baseline(Path(args.write_baseline), findings,
                       with_justification=True)
        print(f"pmx-analyze: wrote baseline with {len(findings)} finding(s) "
              f"to {args.write_baseline}; fill in the justification fields")
        return 0

    if args.baseline:
        try:
            baseline = load_baseline(Path(args.baseline),
                                     require_justification=True)
        except ValueError as err:
            print(f"pmx-analyze: {err}", file=sys.stderr)
            return 2
        findings = subtract_baseline(findings, baseline)

    if not args.quiet:
        for fi in findings:
            print(fi)
    label = "new finding(s)" if args.baseline else "finding(s)"
    print(f"pmx-analyze: {len(findings)} {label} in {len(files)} file(s)",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
